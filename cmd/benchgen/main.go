// Command benchgen generates the synthetic benchmark suites and writes
// workload traces (JSON) and kernel-level profiles (CSV, as a timeline
// profiler would emit) to a directory.
//
// Usage:
//
//	benchgen -suite casio -scale 0.1 -device rtx2080 -out traces/
//	benchgen -suite serving -invocations 10000000 -out - | stemroot -stream -profile -
//
// The serving suite is special: it streams a KernelSight-LM-style
// LLM-serving profile CSV (prefill/decode kernel mix, batch-dependent
// durations, bursty multi-tenant arrivals) of exactly -invocations rows,
// generated on the fly in O(1) memory, to a file or to stdout with
// "-out -" — the feed for stemroot's -stream service mode.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"

	"stemroot/internal/hwmodel"
	"stemroot/internal/servetrace"
	"stemroot/internal/workloads"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchgen: ")

	suite := flag.String("suite", "casio", "suite to generate: rodinia, casio, huggingface, serving")
	scale := flag.Float64("scale", 0.1, "suite scale factor (casio/huggingface)")
	seed := flag.Uint64("seed", 1, "generation seed")
	device := flag.String("device", "rtx2080", "profiling device: rtx2080, h100, h200")
	out := flag.String("out", "traces", "output directory (serving: output CSV path, or - for stdout)")
	invocations := flag.Int("invocations", 1_000_000, "serving suite: exact kernel invocations to emit")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile to this path")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile to this path on exit")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer writeHeapProfile(*memProfile)
	}

	if *suite == "serving" {
		if err := generateServing(*seed, *invocations, *out, os.Stdout, os.Stderr); err != nil {
			log.Fatal(err)
		}
		return
	}
	if err := generate(*suite, *scale, *seed, *device, *out, os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// writeHeapProfile records an up-to-date heap profile, the evidence base
// for allocation-focused perf work (go tool pprof <binary> <path>).
func writeHeapProfile(path string) {
	f, err := os.Create(path)
	if err != nil {
		log.Print(err)
		return
	}
	defer f.Close()
	runtime.GC() // materialize up-to-date allocation statistics
	if err := pprof.WriteHeapProfile(f); err != nil {
		log.Print(err)
	}
}

// generateServing streams a serving-trace profile CSV to out ("-" =
// stdout). The report line goes to errReport so stdout stays a clean CSV
// pipe.
func generateServing(seed uint64, invocations int, out string, stdout, errReport io.Writer) error {
	s := servetrace.New(servetrace.Config{Seed: seed, Invocations: invocations})
	var w io.Writer
	if out == "-" {
		w = stdout
	} else {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := s.WriteCSV(w); err != nil {
		return err
	}
	fmt.Fprintf(errReport, "serving trace: %d invocations, %d distinct kernels -> %s\n",
		invocations, s.NumKernels(), out)
	return nil
}

// generate produces the suite's trace and profile files under outDir and
// logs one line per workload to report.
func generate(suite string, scale float64, seed uint64, device, outDir string, report io.Writer) error {
	dev, err := hwmodel.ByName(device)
	if err != nil {
		return err
	}
	ws, err := workloads.Suite(suite, seed, scale)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}

	for _, w := range ws {
		tracePath := filepath.Join(outDir, w.Name+".trace.json")
		f, err := os.Create(tracePath)
		if err != nil {
			return err
		}
		if err := w.WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}

		prof := hwmodel.New(dev, w.Seed).Profile(w)
		profPath := filepath.Join(outDir, w.Name+"."+dev.Name+".csv")
		pf, err := os.Create(profPath)
		if err != nil {
			return err
		}
		if err := prof.WriteCSV(w, pf); err != nil {
			pf.Close()
			return err
		}
		if err := pf.Close(); err != nil {
			return err
		}
		fmt.Fprintf(report, "%-20s %8d kernel calls  total %12.1f us  -> %s, %s\n",
			w.Name, w.Len(), prof.TotalTime(), tracePath, profPath)
	}
	return nil
}
