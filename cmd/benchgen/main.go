// Command benchgen generates the synthetic benchmark suites and writes
// workload traces (JSON) and kernel-level profiles (CSV, as a timeline
// profiler would emit) to a directory.
//
// Usage:
//
//	benchgen -suite casio -scale 0.1 -device rtx2080 -out traces/
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"

	"stemroot/internal/hwmodel"
	"stemroot/internal/workloads"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchgen: ")

	suite := flag.String("suite", "casio", "suite to generate: rodinia, casio, huggingface")
	scale := flag.Float64("scale", 0.1, "suite scale factor (casio/huggingface)")
	seed := flag.Uint64("seed", 1, "generation seed")
	device := flag.String("device", "rtx2080", "profiling device: rtx2080, h100, h200")
	out := flag.String("out", "traces", "output directory")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile to this path")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile to this path on exit")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer writeHeapProfile(*memProfile)
	}

	if err := generate(*suite, *scale, *seed, *device, *out, os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// writeHeapProfile records an up-to-date heap profile, the evidence base
// for allocation-focused perf work (go tool pprof <binary> <path>).
func writeHeapProfile(path string) {
	f, err := os.Create(path)
	if err != nil {
		log.Print(err)
		return
	}
	defer f.Close()
	runtime.GC() // materialize up-to-date allocation statistics
	if err := pprof.WriteHeapProfile(f); err != nil {
		log.Print(err)
	}
}

// generate produces the suite's trace and profile files under outDir and
// logs one line per workload to report.
func generate(suite string, scale float64, seed uint64, device, outDir string, report io.Writer) error {
	dev, err := hwmodel.ByName(device)
	if err != nil {
		return err
	}
	ws, err := workloads.Suite(suite, seed, scale)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}

	for _, w := range ws {
		tracePath := filepath.Join(outDir, w.Name+".trace.json")
		f, err := os.Create(tracePath)
		if err != nil {
			return err
		}
		if err := w.WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}

		prof := hwmodel.New(dev, w.Seed).Profile(w)
		profPath := filepath.Join(outDir, w.Name+"."+dev.Name+".csv")
		pf, err := os.Create(profPath)
		if err != nil {
			return err
		}
		if err := prof.WriteCSV(w, pf); err != nil {
			pf.Close()
			return err
		}
		if err := pf.Close(); err != nil {
			return err
		}
		fmt.Fprintf(report, "%-20s %8d kernel calls  total %12.1f us  -> %s, %s\n",
			w.Name, w.Len(), prof.TotalTime(), tracePath, profPath)
	}
	return nil
}
