// Command stemroot builds a STEM+ROOT sampling plan from a kernel-level
// profile CSV (columns: seq,name,time_us — the format benchgen emits and
// any timeline profiler export can be converted to) and prints the plan:
// clusters, sample sizes, predicted error, and the invocations to simulate.
//
// Usage:
//
//	stemroot -profile traces/bert_infer.rtx2080.csv -epsilon 0.05
//	stemroot -profile huge.csv -stream -o plan.json
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"

	"stemroot"
	"stemroot/internal/trace"
)

// cliConfig carries the parsed flags.
type cliConfig struct {
	profilePath string
	epsilon     float64
	confidence  float64
	seed        uint64
	flat        bool
	stream      bool
	tdist       bool
	jobs        int
	planOut     string
	verbose     bool
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("stemroot: ")

	var cfg cliConfig
	flag.StringVar(&cfg.profilePath, "profile", "", "profile CSV (seq,name,time_us)")
	flag.Float64Var(&cfg.epsilon, "epsilon", 0.05, "target relative error bound")
	flag.Float64Var(&cfg.confidence, "confidence", 0.95, "confidence level")
	flag.Uint64Var(&cfg.seed, "seed", 1, "sampling seed")
	flag.BoolVar(&cfg.flat, "flat", false, "disable ROOT's hierarchical splitting")
	flag.BoolVar(&cfg.stream, "stream", false, "two-pass streaming mode (bounded memory, for huge profiles)")
	flag.BoolVar(&cfg.tdist, "tdist", false, "Student-t small-sample correction")
	flag.IntVar(&cfg.jobs, "j", 0, "worker count (0 = one per CPU, 1 = serial; output is identical)")
	flag.StringVar(&cfg.planOut, "o", "", "write the sampling plan as JSON to this path")
	flag.BoolVar(&cfg.verbose, "v", false, "print every cluster")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile to this path")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile to this path on exit")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer writeHeapProfile(*memProfile)
	}

	if err := run(cfg, os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// writeHeapProfile records an up-to-date heap profile, the evidence base
// for allocation-focused perf work (go tool pprof <binary> <path>).
func writeHeapProfile(path string) {
	f, err := os.Create(path)
	if err != nil {
		log.Print(err)
		return
	}
	defer f.Close()
	runtime.GC() // materialize up-to-date allocation statistics
	if err := pprof.WriteHeapProfile(f); err != nil {
		log.Print(err)
	}
}

func run(cfg cliConfig, out io.Writer) error {
	if cfg.profilePath == "" {
		return errors.New("missing -profile")
	}
	opts := stemroot.Options{
		Epsilon:      cfg.epsilon,
		Confidence:   cfg.confidence,
		Seed:         cfg.seed,
		Flat:         cfg.flat,
		SmallSampleT: cfg.tdist,
		Parallelism:  cfg.jobs,
	}

	var (
		plan  *stemroot.Plan
		times []float64
	)
	if cfg.stream {
		scanner := trace.CSVScanner{Path: cfg.profilePath}
		p, err := stemroot.SampleStream(scanner, opts, stemroot.StreamOptions{})
		if err != nil {
			return err
		}
		plan = p
		// Times are still needed for the report; stream them once more.
		if err := scanner.Scan(func(_ string, t float64) bool {
			times = append(times, t)
			return true
		}); err != nil {
			return err
		}
	} else {
		f, err := os.Open(cfg.profilePath)
		if err != nil {
			return err
		}
		var names []string
		names, times, err = trace.ReadProfileCSV(f)
		f.Close()
		if err != nil {
			return err
		}
		plan, err = stemroot.Sample(names, times, opts)
		if err != nil {
			return err
		}
	}

	if cfg.planOut != "" {
		f, err := os.Create(cfg.planOut)
		if err != nil {
			return err
		}
		if err := plan.WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(out, "plan written to %s\n", cfg.planOut)
	}

	var total float64
	for _, t := range times {
		total += t
	}
	distinct := plan.SampledIndices()
	var sampledTime float64
	for _, ix := range distinct {
		sampledTime += times[ix]
	}

	fmt.Fprintf(out, "invocations:      %d\n", len(times))
	fmt.Fprintf(out, "clusters:         %d\n", len(plan.Clusters))
	fmt.Fprintf(out, "samples (w/repl): %d\n", plan.TotalSamples())
	fmt.Fprintf(out, "distinct samples: %d\n", len(distinct))
	fmt.Fprintf(out, "predicted error:  %.4f (bound %.2f)\n", plan.PredictedError, plan.Epsilon)
	if sampledTime > 0 {
		fmt.Fprintf(out, "expected speedup: %.1fx\n", total/sampledTime)
	}

	if cfg.verbose {
		sort.Slice(plan.Clusters, func(i, j int) bool {
			return totalTime(plan.Clusters[i]) > totalTime(plan.Clusters[j])
		})
		fmt.Fprintln(out, "\nclusters (by total time):")
		for _, c := range plan.Clusters {
			fmt.Fprintf(out, "  %-32s members=%-7d samples=%-5d mean=%10.2fus cov=%.3f\n",
				c.Kernel, len(c.Members), len(c.Samples), c.Mean, cov(c))
		}
	}
	return nil
}

func totalTime(c stemroot.Cluster) float64 {
	n := len(c.Members)
	if n == 0 { // streaming plans carry the population in the weight
		n = int(c.Weight*float64(len(c.Samples)) + 0.5)
	}
	return c.Mean * float64(n)
}

func cov(c stemroot.Cluster) float64 {
	if c.Mean == 0 {
		return 0
	}
	return c.StdDev / c.Mean
}
