// Command stemroot builds a STEM+ROOT sampling plan from a kernel-level
// profile CSV (columns: seq,name,time_us — the format benchgen emits and
// any timeline profiler export can be converted to) and prints the plan:
// clusters, sample sizes, predicted error, and the invocations to simulate.
//
// Usage:
//
//	stemroot -profile traces/bert_infer.rtx2080.csv -epsilon 0.05
//	stemroot -profile huge.csv -stream -o plan.json
//	stemroot -profile trace.csv -simulate -cachedir ~/.cache/stemroot
//	stemroot -profile trace.csv -simulate -cacheaddr cachehost:9736
//
// With -simulate, the plan is additionally validated on the cycle-level
// simulator against a workload reconstructed from the profile; -cachedir
// persists segment results so repeat validations skip the full simulation,
// and -cacheaddr shares them through a cmd/cacheserver across machines and
// concurrent runs.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"

	"stemroot"
	"stemroot/internal/cachenet"
	"stemroot/internal/core"
	"stemroot/internal/gpu"
	"stemroot/internal/hwmodel"
	"stemroot/internal/kernelgen"
	"stemroot/internal/metrics"
	"stemroot/internal/pipeline"
	"stemroot/internal/sampling"
	"stemroot/internal/simcache"
	"stemroot/internal/trace"
	"stemroot/internal/workloads"
)

// cliConfig carries the parsed flags.
type cliConfig struct {
	profilePath  string
	epsilon      float64
	confidence   float64
	seed         uint64
	flat         bool
	stream       bool
	snapshot     int
	tdist        bool
	jobs         int
	planOut      string
	verbose      bool
	simulate     bool
	simCalls     int
	cacheDir     string
	cacheAddr    string
	cacheMB      int
	noCache      bool
	cacheStats   bool
	engine       string
	jkernel      int
	jmerge       int
	epoch        float64
	barrierStats bool

	stdin io.Reader // -profile - source; os.Stdin outside tests
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("stemroot: ")

	var cfg cliConfig
	flag.StringVar(&cfg.profilePath, "profile", "", "profile CSV (seq,name,time_us)")
	flag.Float64Var(&cfg.epsilon, "epsilon", 0.05, "target relative error bound")
	flag.Float64Var(&cfg.confidence, "confidence", 0.95, "confidence level")
	flag.Uint64Var(&cfg.seed, "seed", 1, "sampling seed")
	flag.BoolVar(&cfg.flat, "flat", false, "disable ROOT's hierarchical splitting")
	flag.BoolVar(&cfg.stream, "stream", false, "single-pass streaming service mode (bounded memory; -profile - reads stdin)")
	flag.IntVar(&cfg.snapshot, "snapshot", 0, "with -stream, print a rolling plan snapshot every N invocations (0 = final only)")
	flag.BoolVar(&cfg.tdist, "tdist", false, "Student-t small-sample correction")
	flag.IntVar(&cfg.jobs, "j", 0, "worker count (0 = one per CPU, 1 = serial; output is identical)")
	flag.StringVar(&cfg.planOut, "o", "", "write the sampling plan as JSON to this path")
	flag.BoolVar(&cfg.verbose, "v", false, "print every cluster")
	flag.BoolVar(&cfg.simulate, "simulate", false, "validate the plan on the cycle-level simulator (synthetic workload reconstructed from the profile)")
	flag.IntVar(&cfg.simCalls, "simcalls", 256, "cap on simulated invocations in -simulate mode")
	flag.StringVar(&cfg.cacheDir, "cachedir", "", "persist -simulate segment results on disk in this directory (reused across runs)")
	flag.StringVar(&cfg.cacheAddr, "cacheaddr", "", "share -simulate segment results through the cacheserver at this address (host:port)")
	flag.IntVar(&cfg.cacheMB, "cachemb", 0, "in-memory segment cache bound in MiB (0 = default 256)")
	flag.BoolVar(&cfg.noCache, "nocache", false, "disable the segment-result cache in -simulate mode")
	flag.BoolVar(&cfg.cacheStats, "cachestats", true, "print per-tier cache counters to stderr after -simulate")
	flag.StringVar(&cfg.engine, "engine", "exact", "-simulate kernel engine: exact (bit-exact event loop) or par (relaxed-sync intra-kernel parallel)")
	flag.IntVar(&cfg.jkernel, "jkernel", 0, "intra-kernel workers for -engine par (0 = one per CPU; never changes results)")
	flag.IntVar(&cfg.jmerge, "jmerge", 0, "epoch-barrier merge workers for -engine par (0 = follow -jkernel; never changes results)")
	flag.Float64Var(&cfg.epoch, "epoch", 0, "epoch length in cycles for -engine par (0 = default; trades accuracy for sync cost)")
	flag.BoolVar(&cfg.barrierStats, "barrierstats", true, "print epoch-barrier accounting to stderr after -engine par -simulate runs")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile to this path")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile to this path on exit")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer writeHeapProfile(*memProfile)
	}

	cfg.stdin = os.Stdin
	if err := run(cfg, os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// writeHeapProfile records an up-to-date heap profile, the evidence base
// for allocation-focused perf work (go tool pprof <binary> <path>).
func writeHeapProfile(path string) {
	f, err := os.Create(path)
	if err != nil {
		log.Print(err)
		return
	}
	defer f.Close()
	runtime.GC() // materialize up-to-date allocation statistics
	if err := pprof.WriteHeapProfile(f); err != nil {
		log.Print(err)
	}
}

func run(cfg cliConfig, out io.Writer) error {
	if cfg.profilePath == "" {
		return errors.New("missing -profile")
	}
	opts := stemroot.Options{
		Epsilon:      cfg.epsilon,
		Confidence:   cfg.confidence,
		Seed:         cfg.seed,
		Flat:         cfg.flat,
		SmallSampleT: cfg.tdist,
		Parallelism:  cfg.jobs,
	}

	if cfg.stream {
		if cfg.simulate {
			return errors.New("-simulate needs the in-memory path; drop -stream")
		}
		return runStream(cfg, opts, out)
	}

	var (
		plan  *stemroot.Plan
		names []string
		times []float64
	)
	{
		f, err := os.Open(cfg.profilePath)
		if err != nil {
			return err
		}
		names, times, err = trace.ReadProfileCSV(f)
		f.Close()
		if err != nil {
			return err
		}
		plan, err = stemroot.Sample(names, times, opts)
		if err != nil {
			return err
		}
	}

	if cfg.planOut != "" {
		f, err := os.Create(cfg.planOut)
		if err != nil {
			return err
		}
		if err := plan.WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(out, "plan written to %s\n", cfg.planOut)
	}

	var total float64
	for _, t := range times {
		total += t
	}
	distinct := plan.SampledIndices()
	var sampledTime float64
	for _, ix := range distinct {
		sampledTime += times[ix]
	}

	fmt.Fprintf(out, "invocations:      %d\n", len(times))
	fmt.Fprintf(out, "clusters:         %d\n", len(plan.Clusters))
	fmt.Fprintf(out, "samples (w/repl): %d\n", plan.TotalSamples())
	fmt.Fprintf(out, "distinct samples: %d\n", len(distinct))
	fmt.Fprintf(out, "predicted error:  %.4f (bound %.2f)\n", plan.PredictedError, plan.Epsilon)
	if sampledTime > 0 {
		fmt.Fprintf(out, "expected speedup: %.1fx\n", total/sampledTime)
	}

	if cfg.simulate {
		if err := simulateProfile(cfg, names, times, out); err != nil {
			return err
		}
	}

	if cfg.verbose {
		sort.Slice(plan.Clusters, func(i, j int) bool {
			return totalTime(plan.Clusters[i]) > totalTime(plan.Clusters[j])
		})
		fmt.Fprintln(out, "\nclusters (by total time):")
		for _, c := range plan.Clusters {
			fmt.Fprintf(out, "  %-32s members=%-7d samples=%-5d mean=%10.2fus cov=%.3f\n",
				c.Kernel, len(c.Members), len(c.Samples), c.Mean, cov(c))
		}
	}
	return nil
}

// runStream is the single-pass streaming service mode: it ingests the
// profile (file, or stdin with -profile -) through the zero-alloc byte
// decoder into a StreamPlanner, optionally printing a rolling snapshot
// every -snapshot invocations, and ends with the same summary the batch
// path prints. Memory stays O(#kernels × ReservoirCap) however long the
// trace is, and the output is byte-identical across runs at a fixed seed.
func runStream(cfg cliConfig, opts stemroot.Options, out io.Writer) error {
	sp, err := stemroot.NewStreamPlanner(opts, stemroot.StreamOptions{})
	if err != nil {
		return err
	}

	var src io.Reader
	if cfg.profilePath == "-" {
		if cfg.stdin == nil {
			return errors.New("-profile -: no stdin available")
		}
		src = cfg.stdin
	} else {
		f, err := os.Open(cfg.profilePath)
		if err != nil {
			return err
		}
		defer f.Close()
		src = f
	}

	next := cfg.snapshot
	var snapErr error
	if err := trace.NewFastCSVReader(src).ScanBytes(func(name []byte, t float64) bool {
		sp.AddBytes(name, t)
		if cfg.snapshot > 0 && sp.Count() >= next {
			snap, err := sp.Snapshot()
			if err != nil {
				snapErr = err
				return false
			}
			printSnapshot(out, snap)
			next += cfg.snapshot
		}
		return true
	}); err != nil {
		return err
	}
	if snapErr != nil {
		return snapErr
	}

	// Final plan: forced re-derivation, so the result is independent of
	// how many rolling snapshots were taken along the way.
	plan, err := sp.Plan()
	if err != nil {
		return err
	}
	snap, err := sp.Snapshot()
	if err != nil {
		return err
	}

	if cfg.planOut != "" {
		f, err := os.Create(cfg.planOut)
		if err != nil {
			return err
		}
		if err := plan.WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(out, "plan written to %s\n", cfg.planOut)
	}

	fmt.Fprintf(out, "invocations:      %d\n", snap.Invocations)
	fmt.Fprintf(out, "kernels:          %d\n", snap.Kernels)
	fmt.Fprintf(out, "clusters:         %d\n", snap.Clusters)
	fmt.Fprintf(out, "samples (w/repl): %d\n", snap.TotalSamples)
	fmt.Fprintf(out, "distinct samples: %d\n", len(plan.SampledIndices()))
	fmt.Fprintf(out, "predicted error:  %.4f (bound %.2f)\n", plan.PredictedError, plan.Epsilon)
	fmt.Fprintf(out, "total time:       %.6e us\n", snap.TotalTimeUS)
	fmt.Fprintf(out, "extrapolated:     %.6e us (gap %+.3f%%)\n",
		snap.ExtrapolatedUS, 100*(snap.ExtrapolatedUS-snap.TotalTimeUS)/snap.TotalTimeUS)
	if snap.DistinctTimeUS > 0 {
		fmt.Fprintf(out, "expected speedup: %.1fx\n", snap.TotalTimeUS/snap.DistinctTimeUS)
	}
	fmt.Fprintf(out, "replans:          %d\n", snap.Replans)

	if cfg.verbose {
		sort.Slice(plan.Clusters, func(i, j int) bool {
			return totalTime(plan.Clusters[i]) > totalTime(plan.Clusters[j])
		})
		fmt.Fprintln(out, "\nclusters (by total time):")
		for _, c := range plan.Clusters {
			fmt.Fprintf(out, "  %-32s members=%-7d samples=%-5d mean=%10.2fus cov=%.3f\n",
				c.Kernel, len(c.Members), len(c.Samples), c.Mean, cov(c))
		}
	}
	return nil
}

// printSnapshot renders one rolling snapshot line — fully deterministic
// (no timestamps), so repeated runs over the same stream are
// byte-identical.
func printSnapshot(out io.Writer, s stemroot.Snapshot) {
	gap := 0.0
	if s.TotalTimeUS > 0 {
		gap = 100 * (s.ExtrapolatedUS - s.TotalTimeUS) / s.TotalTimeUS
	}
	fmt.Fprintf(out,
		"snapshot @%d: kernels=%d clusters=%d samples=%d predicted_error=%.4f total_us=%.6e extrapolated_us=%.6e gap=%+.3f%% replans=%d\n",
		s.Invocations, s.Kernels, s.Clusters, s.TotalSamples, s.PredictedError,
		s.TotalTimeUS, s.ExtrapolatedUS, gap, s.Replans)
}

// simulateProfile validates the sampling approach on the cycle-level
// simulator: it reconstructs a simulatable workload from the profile
// (workloads.FromProfile — deterministic in the profile and seed), computes
// ground truth with a full simulation, replans with STEM+ROOT, and scores
// the plan's estimate against the truth. The segment cache makes repeat
// validations cheap: with -cachedir, a second run of the same profile serves
// its full simulation from disk instead of re-simulating.
func simulateProfile(cfg cliConfig, names []string, times []float64, out io.Writer) error {
	w := workloads.ReduceForSim(
		workloads.FromProfile(filepath.Base(cfg.profilePath), names, times, cfg.seed),
		cfg.simCalls, 64)

	opts := pipeline.Options{
		Workers: cfg.jobs,
		Engine:  cfg.engine, KernelWorkers: cfg.jkernel,
		MergeWorkers: cfg.jmerge, Epoch: cfg.epoch,
	}
	if cfg.barrierStats && cfg.engine == gpu.EngineModePar {
		// Stderr-only observability, like cache stats: stdout stays
		// byte-comparable whether or not accounting is collected.
		collector := new(metrics.BarrierCollector)
		opts.BarrierStats = collector
		defer func() { log.Print(collector.Snapshot().String()) }()
	}
	var sc *simcache.Cache
	var client *cachenet.Client
	if !cfg.noCache {
		var remote simcache.Remote
		if cfg.cacheAddr != "" {
			client = cachenet.New(cachenet.ClientOptions{Addr: cfg.cacheAddr})
			// Close drains the pipelined write window so this run's computed
			// segments reach the server before the process exits. Idempotent:
			// the stats path below closes earlier to finalize the counters.
			defer client.Close()
			remote = client
		}
		var err error
		sc, err = simcache.New(simcache.Options{
			MaxBytes: int64(cfg.cacheMB) << 20,
			Dir:      cfg.cacheDir,
			Remote:   remote,
		})
		if err != nil {
			return err
		}
		opts.Cache = sc
	}

	gcfg := gpu.Baseline()
	lim := kernelgen.DSELimits()
	full, err := pipeline.FullSimOpt(w, gcfg, lim, opts)
	if err != nil {
		return err
	}
	p := core.DefaultParams()
	p.Epsilon = cfg.epsilon
	p.Confidence = cfg.confidence
	p.Seed = cfg.seed
	p.SmallSampleT = cfg.tdist
	p.Workers = cfg.jobs
	stem := &sampling.STEMRoot{Params: p}
	r, err := pipeline.RunOpt(w, hwmodel.RTX2080, stem, gcfg, lim, full, opts)
	if err != nil {
		return err
	}

	fmt.Fprintf(out, "\nsimulator validation (reconstructed workload, %d invocations):\n", w.Len())
	fmt.Fprintf(out, "  full cycles:      %.4e\n", r.FullCycles)
	fmt.Fprintf(out, "  estimated cycles: %.4e\n", r.EstimateCycles)
	fmt.Fprintf(out, "  measured error:   %.3f%% (bound %.2f)\n", r.Outcome.ErrorPct, cfg.epsilon)
	fmt.Fprintf(out, "  sim speedup:      %.1fx\n", r.Outcome.Speedup)
	if sc != nil && cfg.cacheStats {
		// Drain the write window first so the counters are final; stats go
		// to stderr so stdout stays byte-comparable across cached and
		// uncached runs.
		if client != nil {
			client.Close()
		}
		log.Printf("segment cache: %s", sc.Stats())
	}
	return nil
}

func totalTime(c stemroot.Cluster) float64 {
	n := len(c.Members)
	if n == 0 { // streaming plans carry the population in the weight
		n = int(c.Weight*float64(len(c.Samples)) + 0.5)
	}
	return c.Mean * float64(n)
}

func cov(c stemroot.Cluster) float64 {
	if c.Mean == 0 {
		return 0
	}
	return c.StdDev / c.Mean
}
