package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"stemroot"
	"stemroot/internal/rng"
)

// writeProfile emits a synthetic profile CSV with two well-separated gemm
// contexts and a stable relu.
func writeProfile(t *testing.T, n int) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "profile.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	fmt.Fprintln(f, "seq,name,time_us")
	r := rng.New(5)
	for i := 0; i < n; i++ {
		switch i % 3 {
		case 0:
			fmt.Fprintf(f, "%d,gemm,%g\n", i, 100*(1+0.02*r.NormFloat64()))
		case 1:
			fmt.Fprintf(f, "%d,gemm,%g\n", i, 300*(1+0.02*r.NormFloat64()))
		default:
			fmt.Fprintf(f, "%d,relu,%g\n", i, 5*(1+0.01*r.NormFloat64()))
		}
	}
	return path
}

func baseCfg(profile string) cliConfig {
	return cliConfig{
		profilePath: profile,
		epsilon:     0.05,
		confidence:  0.95,
		seed:        1,
	}
}

func TestRunInMemory(t *testing.T) {
	cfg := baseCfg(writeProfile(t, 3000))
	cfg.verbose = true
	var buf strings.Builder
	if err := run(cfg, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"invocations:      3000", "clusters:", "gemm", "expected speedup"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunStreamingMatches(t *testing.T) {
	profile := writeProfile(t, 3000)
	var mem, str strings.Builder
	if err := run(baseCfg(profile), &mem); err != nil {
		t.Fatal(err)
	}
	cfg := baseCfg(profile)
	cfg.stream = true
	if err := run(cfg, &str); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(str.String(), "invocations:      3000") {
		t.Fatalf("streaming output wrong:\n%s", str.String())
	}
}

func TestRunWritesPlanJSON(t *testing.T) {
	profile := writeProfile(t, 1500)
	planPath := filepath.Join(t.TempDir(), "plan.json")
	cfg := baseCfg(profile)
	cfg.planOut = planPath
	var buf strings.Builder
	if err := run(cfg, &buf); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(planPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	plan, err := stemroot.ReadPlanJSON(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Clusters) == 0 {
		t.Fatal("empty plan written")
	}
}

func TestRunErrors(t *testing.T) {
	var buf strings.Builder
	if err := run(cliConfig{}, &buf); err == nil {
		t.Fatal("expected missing-profile error")
	}
	cfg := baseCfg("/nonexistent/profile.csv")
	if err := run(cfg, &buf); err == nil {
		t.Fatal("expected open error")
	}
	cfg = baseCfg(writeProfile(t, 100))
	cfg.epsilon = 7
	if err := run(cfg, &buf); err == nil {
		t.Fatal("expected epsilon validation error")
	}
}

func TestRunTDistFlag(t *testing.T) {
	cfg := baseCfg(writeProfile(t, 2000))
	cfg.tdist = true
	var buf strings.Builder
	if err := run(cfg, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "predicted error") {
		t.Fatal("missing summary")
	}
}

func TestRunSimulate(t *testing.T) {
	profile := writeProfile(t, 600)
	cacheDir := filepath.Join(t.TempDir(), "segcache")
	cfg := baseCfg(profile)
	cfg.simulate = true
	cfg.simCalls = 48
	cfg.cacheDir = cacheDir
	cfg.jobs = 1

	var first, second strings.Builder
	if err := run(cfg, &first); err != nil {
		t.Fatal(err)
	}
	out := first.String()
	for _, want := range []string{"simulator validation", "full cycles", "measured error", "sim speedup"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	// A second run reuses the disk-cached segments and must print the exact
	// same report (cache substitution is bit-identical).
	if err := run(cfg, &second); err != nil {
		t.Fatal(err)
	}
	if first.String() != second.String() {
		t.Fatalf("warm run output differs:\n--- cold ---\n%s--- warm ---\n%s", first.String(), second.String())
	}
	entries, err := filepath.Glob(filepath.Join(cacheDir, "*", "*"))
	if err != nil || len(entries) == 0 {
		t.Fatalf("no disk cache entries written (%v)", err)
	}
}

func TestRunSimulateRejectsStream(t *testing.T) {
	cfg := baseCfg(writeProfile(t, 300))
	cfg.simulate = true
	cfg.stream = true
	var buf strings.Builder
	if err := run(cfg, &buf); err == nil {
		t.Fatal("expected -simulate/-stream conflict error")
	}
}
