package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"stemroot"
	"stemroot/internal/rng"
	"stemroot/internal/trace"
)

// writeProfile emits a synthetic profile CSV with two well-separated gemm
// contexts and a stable relu.
func writeProfile(t *testing.T, n int) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "profile.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	fmt.Fprintln(f, "seq,name,time_us")
	r := rng.New(5)
	for i := 0; i < n; i++ {
		switch i % 3 {
		case 0:
			fmt.Fprintf(f, "%d,gemm,%g\n", i, 100*(1+0.02*r.NormFloat64()))
		case 1:
			fmt.Fprintf(f, "%d,gemm,%g\n", i, 300*(1+0.02*r.NormFloat64()))
		default:
			fmt.Fprintf(f, "%d,relu,%g\n", i, 5*(1+0.01*r.NormFloat64()))
		}
	}
	return path
}

func baseCfg(profile string) cliConfig {
	return cliConfig{
		profilePath: profile,
		epsilon:     0.05,
		confidence:  0.95,
		seed:        1,
	}
}

func TestRunInMemory(t *testing.T) {
	cfg := baseCfg(writeProfile(t, 3000))
	cfg.verbose = true
	var buf strings.Builder
	if err := run(cfg, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"invocations:      3000", "clusters:", "gemm", "expected speedup"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunStreamingMatches(t *testing.T) {
	profile := writeProfile(t, 3000)
	var mem, str strings.Builder
	if err := run(baseCfg(profile), &mem); err != nil {
		t.Fatal(err)
	}
	cfg := baseCfg(profile)
	cfg.stream = true
	if err := run(cfg, &str); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(str.String(), "invocations:      3000") {
		t.Fatalf("streaming output wrong:\n%s", str.String())
	}
}

func TestRunStreamSnapshots(t *testing.T) {
	profile := writeProfile(t, 5000)
	cfg := baseCfg(profile)
	cfg.stream = true
	cfg.snapshot = 1000
	var buf strings.Builder
	if err := run(cfg, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if got := strings.Count(out, "snapshot @"); got != 5 {
		t.Fatalf("want 5 rolling snapshots, got %d:\n%s", got, out)
	}
	for _, want := range []string{"snapshot @1000:", "snapshot @5000:", "invocations:      5000", "replans:", "extrapolated:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunStreamStdinDeterministic(t *testing.T) {
	// -profile - reads the CSV from stdin; two runs over the same bytes
	// must produce byte-identical output (the service-mode smoke).
	profile := writeProfile(t, 4000)
	data, err := os.ReadFile(profile)
	if err != nil {
		t.Fatal(err)
	}
	runOnce := func() string {
		cfg := baseCfg("-")
		cfg.stream = true
		cfg.snapshot = 1000
		cfg.stdin = strings.NewReader(string(data))
		var buf strings.Builder
		if err := run(cfg, &buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	a, b := runOnce(), runOnce()
	if a != b {
		t.Fatalf("stream runs differ:\n--- a ---\n%s--- b ---\n%s", a, b)
	}
	if !strings.Contains(a, "invocations:      4000") {
		t.Fatalf("unexpected stream output:\n%s", a)
	}

	// Without a stdin reader, -profile - must error, not crash.
	cfg := baseCfg("-")
	cfg.stream = true
	var buf strings.Builder
	if err := run(cfg, &buf); err == nil {
		t.Fatal("expected stdin-unavailable error")
	}
}

func TestRunStreamMatchesTwoPassPlanJSON(t *testing.T) {
	// The single-pass service mode and the two-pass SampleStream agree on
	// the plan for an in-reservoir trace (the equivalence pin, end to
	// end through the CLI).
	profile := writeProfile(t, 3000)
	planPath := filepath.Join(t.TempDir(), "plan.json")
	cfg := baseCfg(profile)
	cfg.stream = true
	cfg.planOut = planPath
	var buf strings.Builder
	if err := run(cfg, &buf); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(planPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	got, err := stemroot.ReadPlanJSON(f)
	if err != nil {
		t.Fatal(err)
	}

	names, times, err := readProfileFile(profile)
	if err != nil {
		t.Fatal(err)
	}
	want, err := stemroot.SampleStream(sliceScanner{names, times},
		stemroot.Options{Epsilon: 0.05, Confidence: 0.95, Seed: 1}, stemroot.StreamOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Clusters) != len(want.Clusters) {
		t.Fatalf("clusters: stream CLI %d vs two-pass %d", len(got.Clusters), len(want.Clusters))
	}
	for i := range got.Clusters {
		g, w := got.Clusters[i], want.Clusters[i]
		if g.Kernel != w.Kernel || g.Weight != w.Weight || g.Mean != w.Mean || g.StdDev != w.StdDev {
			t.Fatalf("cluster %d differs:\n single-pass %+v\n two-pass    %+v", i, g, w)
		}
		if len(g.Samples) != len(w.Samples) {
			t.Fatalf("cluster %d sample count %d vs %d", i, len(g.Samples), len(w.Samples))
		}
		for j := range g.Samples {
			if g.Samples[j] != w.Samples[j] {
				t.Fatalf("cluster %d sample %d: %d vs %d", i, j, g.Samples[j], w.Samples[j])
			}
		}
	}
}

func TestRunWritesPlanJSON(t *testing.T) {
	profile := writeProfile(t, 1500)
	planPath := filepath.Join(t.TempDir(), "plan.json")
	cfg := baseCfg(profile)
	cfg.planOut = planPath
	var buf strings.Builder
	if err := run(cfg, &buf); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(planPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	plan, err := stemroot.ReadPlanJSON(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Clusters) == 0 {
		t.Fatal("empty plan written")
	}
}

// readProfileFile loads a CSV profile for test comparisons.
func readProfileFile(path string) ([]string, []float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	return trace.ReadProfileCSV(f)
}

// sliceScanner adapts in-memory slices to the public Scanner interface.
type sliceScanner struct {
	names []string
	times []float64
}

func (s sliceScanner) Scan(yield func(string, float64) bool) error {
	for i, n := range s.names {
		if !yield(n, s.times[i]) {
			return nil
		}
	}
	return nil
}

func TestRunErrors(t *testing.T) {
	var buf strings.Builder
	if err := run(cliConfig{}, &buf); err == nil {
		t.Fatal("expected missing-profile error")
	}
	cfg := baseCfg("/nonexistent/profile.csv")
	if err := run(cfg, &buf); err == nil {
		t.Fatal("expected open error")
	}
	cfg = baseCfg(writeProfile(t, 100))
	cfg.epsilon = 7
	if err := run(cfg, &buf); err == nil {
		t.Fatal("expected epsilon validation error")
	}
}

func TestRunTDistFlag(t *testing.T) {
	cfg := baseCfg(writeProfile(t, 2000))
	cfg.tdist = true
	var buf strings.Builder
	if err := run(cfg, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "predicted error") {
		t.Fatal("missing summary")
	}
}

func TestRunSimulate(t *testing.T) {
	profile := writeProfile(t, 600)
	cacheDir := filepath.Join(t.TempDir(), "segcache")
	cfg := baseCfg(profile)
	cfg.simulate = true
	cfg.simCalls = 48
	cfg.cacheDir = cacheDir
	cfg.jobs = 1

	var first, second strings.Builder
	if err := run(cfg, &first); err != nil {
		t.Fatal(err)
	}
	out := first.String()
	for _, want := range []string{"simulator validation", "full cycles", "measured error", "sim speedup"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	// A second run reuses the disk-cached segments and must print the exact
	// same report (cache substitution is bit-identical).
	if err := run(cfg, &second); err != nil {
		t.Fatal(err)
	}
	if first.String() != second.String() {
		t.Fatalf("warm run output differs:\n--- cold ---\n%s--- warm ---\n%s", first.String(), second.String())
	}
	entries, err := filepath.Glob(filepath.Join(cacheDir, "*", "*"))
	if err != nil || len(entries) == 0 {
		t.Fatalf("no disk cache entries written (%v)", err)
	}
}

func TestRunSimulateRejectsStream(t *testing.T) {
	cfg := baseCfg(writeProfile(t, 300))
	cfg.simulate = true
	cfg.stream = true
	var buf strings.Builder
	if err := run(cfg, &buf); err == nil {
		t.Fatal("expected -simulate/-stream conflict error")
	}
}
