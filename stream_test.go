package stemroot

import (
	"math"
	"testing"
)

type sliceScanner struct {
	names []string
	times []float64
}

func (s sliceScanner) Scan(yield func(string, float64) bool) error {
	for i := range s.names {
		if !yield(s.names[i], s.times[i]) {
			return nil
		}
	}
	return nil
}

func TestSampleStreamEndToEnd(t *testing.T) {
	names, times := syntheticProfile(30000, 8)
	plan, err := SampleStream(sliceScanner{names, times}, Options{}, StreamOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var truth float64
	for _, tt := range times {
		truth += tt
	}
	est := plan.Estimate(func(i int) float64 { return times[i] })
	if rel := math.Abs(est-truth) / truth; rel > plan.Epsilon {
		t.Fatalf("streaming error %v exceeds bound %v", rel, plan.Epsilon)
	}
	if n := len(plan.SampledIndices()); n == 0 || n >= len(times)/4 {
		t.Fatalf("sampled %d of %d", n, len(times))
	}
}

func TestSampleStreamTinyReservoir(t *testing.T) {
	names, times := syntheticProfile(10000, 9)
	plan, err := SampleStream(sliceScanner{names, times}, Options{},
		StreamOptions{ReservoirCap: 128})
	if err != nil {
		t.Fatal(err)
	}
	var truth float64
	for _, tt := range times {
		truth += tt
	}
	est := plan.Estimate(func(i int) float64 { return times[i] })
	if rel := math.Abs(est-truth) / truth; rel > plan.Epsilon {
		t.Fatalf("tiny-reservoir error %v exceeds bound", rel)
	}
}

func TestSampleStreamErrors(t *testing.T) {
	if _, err := SampleStream(sliceScanner{}, Options{}, StreamOptions{}); err == nil {
		t.Fatal("expected error for empty stream")
	}
	names, times := syntheticProfile(100, 10)
	if _, err := SampleStream(sliceScanner{names, times}, Options{Epsilon: 5}, StreamOptions{}); err == nil {
		t.Fatal("expected bad-epsilon error")
	}
}
