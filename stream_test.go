package stemroot

import (
	"errors"
	"math"
	"reflect"
	"testing"
)

type sliceScanner struct {
	names []string
	times []float64
}

func (s sliceScanner) Scan(yield func(string, float64) bool) error {
	for i := range s.names {
		if !yield(s.names[i], s.times[i]) {
			return nil
		}
	}
	return nil
}

func TestSampleStreamEndToEnd(t *testing.T) {
	names, times := syntheticProfile(30000, 8)
	plan, err := SampleStream(sliceScanner{names, times}, Options{}, StreamOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var truth float64
	for _, tt := range times {
		truth += tt
	}
	est := plan.Estimate(func(i int) float64 { return times[i] })
	if rel := math.Abs(est-truth) / truth; rel > plan.Epsilon {
		t.Fatalf("streaming error %v exceeds bound %v", rel, plan.Epsilon)
	}
	if n := len(plan.SampledIndices()); n == 0 || n >= len(times)/4 {
		t.Fatalf("sampled %d of %d", n, len(times))
	}
}

func TestSampleStreamTinyReservoir(t *testing.T) {
	names, times := syntheticProfile(10000, 9)
	plan, err := SampleStream(sliceScanner{names, times}, Options{},
		StreamOptions{ReservoirCap: 128})
	if err != nil {
		t.Fatal(err)
	}
	var truth float64
	for _, tt := range times {
		truth += tt
	}
	est := plan.Estimate(func(i int) float64 { return times[i] })
	if rel := math.Abs(est-truth) / truth; rel > plan.Epsilon {
		t.Fatalf("tiny-reservoir error %v exceeds bound", rel)
	}
}

func TestSampleStreamErrors(t *testing.T) {
	if _, err := SampleStream(sliceScanner{}, Options{}, StreamOptions{}); err == nil {
		t.Fatal("expected error for empty stream")
	}
	names, times := syntheticProfile(100, 10)
	if _, err := SampleStream(sliceScanner{names, times}, Options{Epsilon: 5}, StreamOptions{}); err == nil {
		t.Fatal("expected bad-epsilon error")
	}
}

func TestSampleStreamSingleKernel(t *testing.T) {
	// One kernel, one narrow mode: the degenerate but legal trace.
	names := make([]string, 500)
	times := make([]float64, 500)
	for i := range names {
		names[i] = "only"
		times[i] = 3.5
	}
	plan, err := SampleStream(sliceScanner{names, times}, Options{}, StreamOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Clusters) == 0 {
		t.Fatal("no clusters for single-kernel trace")
	}
	for _, c := range plan.Clusters {
		if c.Kernel != "only" {
			t.Fatalf("unexpected kernel %q", c.Kernel)
		}
	}
	est := plan.Estimate(func(i int) float64 { return times[i] })
	if math.Abs(est-3.5*500) > 1e-6 {
		t.Fatalf("constant-trace estimate %v, want %v", est, 3.5*500)
	}
}

// failingScanner errors after yielding failAfter rows, on pass number
// failOnPass (1-based) — to exercise error propagation from either
// streaming pass.
type failingScanner struct {
	names      []string
	times      []float64
	failOnPass int
	pass       int
}

func (s *failingScanner) Scan(yield func(string, float64) bool) error {
	s.pass++
	if s.pass == s.failOnPass {
		return errScannerBroke
	}
	for i := range s.names {
		if !yield(s.names[i], s.times[i]) {
			return nil
		}
	}
	return nil
}

var errScannerBroke = errors.New("scanner broke")

func TestSampleStreamScanErrorPropagation(t *testing.T) {
	names, times := syntheticProfile(1000, 11)
	for pass := 1; pass <= 2; pass++ {
		sc := &failingScanner{names: names, times: times, failOnPass: pass}
		_, err := SampleStream(sc, Options{}, StreamOptions{})
		if !errors.Is(err, errScannerBroke) {
			t.Fatalf("pass-%d scanner error not propagated: %v", pass, err)
		}
	}
}

func TestSampleStreamDeterministicAcrossRuns(t *testing.T) {
	// Fixed seed -> bit-identical plans (reservoir RNG, clustering, and
	// sample draws are all derived from the seed).
	names, times := syntheticProfile(20000, 12)
	a, err := SampleStream(sliceScanner{names, times}, Options{Seed: 99}, StreamOptions{ReservoirCap: 512})
	if err != nil {
		t.Fatal(err)
	}
	b, err := SampleStream(sliceScanner{names, times}, Options{Seed: 99}, StreamOptions{ReservoirCap: 512})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("repeated SampleStream runs differ at fixed seed")
	}
}

func TestStreamPlannerMatchesSampleStream(t *testing.T) {
	// The single-pass public planner reproduces the two-pass plan exactly
	// on an in-reservoir trace.
	names, times := syntheticProfile(3000, 13)
	want, err := SampleStream(sliceScanner{names, times}, Options{}, StreamOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sp, err := NewStreamPlanner(Options{}, StreamOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range names {
		sp.Add(names[i], times[i])
	}
	got, err := sp.Plan()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("StreamPlanner plan differs from two-pass SampleStream")
	}
}

func TestStreamPlannerSnapshot(t *testing.T) {
	names, times := syntheticProfile(20000, 14)
	sp, err := NewStreamPlanner(Options{}, StreamOptions{ReservoirCap: 1024})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sp.Snapshot(); err == nil {
		t.Fatal("expected error snapshotting an empty stream")
	}
	var truth float64
	for i := range names {
		sp.Add(names[i], times[i])
		truth += times[i]
	}
	snap, err := sp.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Invocations != 20000 || snap.Kernels == 0 || snap.Clusters == 0 {
		t.Fatalf("snapshot %+v", snap)
	}
	if math.Abs(snap.TotalTimeUS-truth)/truth > 1e-12 {
		t.Fatalf("snapshot total %v vs exact %v", snap.TotalTimeUS, truth)
	}
	// The rolling extrapolation is within the error bound of the truth.
	if rel := math.Abs(snap.ExtrapolatedUS-truth) / truth; rel > 0.05 {
		t.Fatalf("extrapolation off by %v (extrapolated %v, exact %v)", rel, snap.ExtrapolatedUS, truth)
	}
	if snap.DistinctTimeUS <= 0 || snap.DistinctTimeUS >= truth {
		t.Fatalf("distinct sampled time %v out of range", snap.DistinctTimeUS)
	}
}
