// Package stemroot is the public API of the STEM+ROOT reproduction — a
// fine-grained kernel-level sampling methodology for trustworthy large-scale
// GPU simulation (Chung, Na, Kang, Kim — MICRO 2025).
//
// The library turns a workload's kernel execution-time profile into a
// sampling plan with a provable error bound: ROOT hierarchically clusters
// invocations of each kernel by execution time, and STEM's statistical
// error model (Central Limit Theorem + a KKT solver) jointly picks the
// minimal per-cluster sample sizes that keep the weighted-sum estimate of
// total execution time within a target relative error ε at a chosen
// confidence level.
//
// # Quick start
//
//	names, times := loadProfile() // one entry per kernel invocation
//	plan, err := stemroot.Sample(names, times, stemroot.Options{})
//	if err != nil { ... }
//	for _, c := range plan.Clusters { simulate(c.Samples) }
//	total := plan.Estimate(func(i int) float64 { return simulatedTime(i) })
//
// Everything else — the synthetic benchmark suites, the GPU hardware timing
// model, the cycle-level simulator, the baseline sampling methods, and the
// per-table/figure experiment runners — lives in the internal packages and
// is exercised through the binaries in cmd/ and the examples/ directory.
package stemroot

import (
	"errors"
	"fmt"

	"stemroot/internal/core"
	"stemroot/internal/stats"
)

// Options configures Sample. The zero value uses the paper's defaults
// (ε = 5% at 95% confidence, k = 2 splits, seed 1).
type Options struct {
	// Epsilon is the target relative error bound in (0,1); 0 means 0.05.
	Epsilon float64
	// Confidence is the confidence level in (0,1); 0 means 0.95.
	Confidence float64
	// SplitK is ROOT's subclusters per split; 0 means 2.
	SplitK int
	// Seed drives clustering initialization and sample selection; 0 means 1.
	Seed uint64
	// Flat disables ROOT's hierarchical splitting (STEM-only sizing over
	// per-name clusters). Mainly useful for ablation studies.
	Flat bool
	// SmallSampleT resizes clusters whose z-based sample size falls below
	// the CLT rule of thumb (m < 30) with Student-t quantiles — a rigorous
	// small-sample extension of the paper's error model.
	SmallSampleT bool
	// Parallelism is the worker count for ROOT's per-kernel clustering
	// fan-out: 0 selects one worker per CPU, 1 forces the serial path. The
	// plan is bit-identical for every value.
	Parallelism int
}

func (o Options) params() core.Params {
	p := core.DefaultParams()
	if o.Epsilon > 0 {
		p.Epsilon = o.Epsilon
	}
	if o.Confidence > 0 {
		p.Confidence = o.Confidence
	}
	if o.SplitK > 0 {
		p.SplitK = o.SplitK
	}
	if o.Seed != 0 {
		p.Seed = o.Seed
	}
	p.SmallSampleT = o.SmallSampleT
	p.Workers = o.Parallelism
	return p
}

// Cluster is one leaf of the sampling plan.
type Cluster struct {
	// Kernel is the kernel name the cluster belongs to.
	Kernel string
	// Members are the invocation indices the cluster represents.
	Members []int
	// Samples are the invocation indices to simulate (drawn with
	// replacement; simulate distinct ones once and reuse the result).
	Samples []int
	// Weight multiplies each sample's measured time in the estimate.
	Weight float64
	// Mean and StdDev summarize the cluster's profiled times.
	Mean, StdDev float64
}

// Plan is a complete sampling plan.
type Plan struct {
	// Clusters cover every invocation exactly once.
	Clusters []Cluster
	// PredictedError is the theoretical relative error bound of the plan
	// (Eq. 4/5 of the paper), at most Epsilon by construction.
	PredictedError float64
	// Epsilon and Confidence echo the effective parameters.
	Epsilon, Confidence float64
}

// Sample builds a STEM+ROOT sampling plan from a kernel-level profile:
// names[i] and timesUS[i] describe invocation i of the workload in
// chronological order. Times must be non-negative; the two slices must have
// equal nonzero length.
func Sample(names []string, timesUS []float64, opts Options) (*Plan, error) {
	if len(names) == 0 {
		return nil, errors.New("stemroot: empty profile")
	}
	if len(names) != len(timesUS) {
		return nil, fmt.Errorf("stemroot: %d names for %d times", len(names), len(timesUS))
	}
	for i, t := range timesUS {
		if t < 0 {
			return nil, fmt.Errorf("stemroot: negative time at invocation %d", i)
		}
	}
	p := opts.params()
	var (
		cp  *core.Plan
		err error
	)
	if opts.Flat {
		cp, err = core.BuildPlanFlat(names, timesUS, p)
	} else {
		cp, err = core.BuildPlan(names, timesUS, p)
	}
	if err != nil {
		return nil, err
	}
	plan := &Plan{
		PredictedError: cp.PredictedError,
		Epsilon:        p.Epsilon,
		Confidence:     p.Confidence,
	}
	for i := range cp.Clusters {
		c := &cp.Clusters[i]
		plan.Clusters = append(plan.Clusters, Cluster{
			Kernel:  c.Name,
			Members: c.Indices,
			Samples: c.Samples,
			Weight:  c.Weight,
			Mean:    c.Stats.Mean,
			StdDev:  c.Stats.StdDev,
		})
	}
	return plan, nil
}

// SampledIndices returns the distinct invocation indices to simulate.
func (p *Plan) SampledIndices() []int {
	seen := make(map[int]bool)
	var out []int
	for i := range p.Clusters {
		for _, s := range p.Clusters[i].Samples {
			if !seen[s] {
				seen[s] = true
				out = append(out, s)
			}
		}
	}
	return out
}

// TotalSamples returns the with-replacement sample count Σ m_i.
func (p *Plan) TotalSamples() int {
	n := 0
	for i := range p.Clusters {
		n += len(p.Clusters[i].Samples)
	}
	return n
}

// Estimate extrapolates the workload's total execution time from measured
// sample times: timeOf(i) must return the measured time of invocation i
// (only sampled indices are queried). The estimate's relative error is
// within Epsilon of the true total at the configured confidence, provided
// timeOf comes from the same machine distribution the plan was built from.
func (p *Plan) Estimate(timeOf func(int) float64) float64 {
	var total float64
	for i := range p.Clusters {
		c := &p.Clusters[i]
		var sum float64
		for _, s := range c.Samples {
			sum += timeOf(s)
		}
		total += c.Weight * sum
	}
	return total
}

// SampleSize implements the paper's Eq. (3) for a single cluster: the
// minimal number of samples keeping the CLT error of the mean-based total
// estimate within epsilon at the given confidence, for a population of n
// observations with the given mean and standard deviation.
func SampleSize(n int, mean, stdDev, epsilon, confidence float64) (int, error) {
	if epsilon <= 0 || epsilon >= 1 {
		return 0, errors.New("stemroot: epsilon must be in (0,1)")
	}
	if confidence <= 0 || confidence >= 1 {
		return 0, errors.New("stemroot: confidence must be in (0,1)")
	}
	p := core.DefaultParams()
	p.Epsilon = epsilon
	p.Confidence = confidence
	return core.SampleSize(core.ClusterStats{N: n, Mean: mean, StdDev: stdDev}, p), nil
}

// ZScore exposes the two-sided standard score for a confidence level
// (1.96 at 95%), as used throughout the error model.
func ZScore(confidence float64) (float64, error) {
	return stats.ZScore(confidence)
}
