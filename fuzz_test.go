package stemroot

import (
	"math"
	"reflect"
	"testing"

	"stemroot/internal/rng"
)

// FuzzSample feeds randomized profiles to the public API and checks the
// invariants every accepted plan must satisfy: full coverage, weights
// consistent with cluster populations, and an estimate within the error
// bound when evaluated against its own profile.
func FuzzSample(f *testing.F) {
	f.Add(uint64(1), 500, 3)
	f.Add(uint64(7), 50, 1)
	f.Add(uint64(42), 2000, 5)
	f.Fuzz(func(t *testing.T, seed uint64, n, kinds int) {
		if n <= 0 || n > 5000 || kinds <= 0 || kinds > 16 {
			t.Skip()
		}
		r := rng.New(seed)
		names := make([]string, n)
		times := make([]float64, n)
		letters := "abcdefghijklmnop"
		for i := range names {
			k := r.Intn(kinds)
			names[i] = letters[k : k+1]
			base := float64(1+k) * 10
			if r.Float64() < 0.3 {
				base *= 4 // second context
			}
			times[i] = base * math.Exp(0.1*r.NormFloat64())
		}

		plan, err := Sample(names, times, Options{Seed: seed})
		if err != nil {
			t.Fatalf("valid profile rejected: %v", err)
		}
		seen := make(map[int]bool)
		for _, c := range plan.Clusters {
			for _, m := range c.Members {
				if m < 0 || m >= n || seen[m] {
					t.Fatal("bad cluster membership")
				}
				seen[m] = true
			}
			if len(c.Samples) > 0 && c.Weight <= 0 {
				t.Fatal("sampled cluster with non-positive weight")
			}
			for _, s := range c.Samples {
				if s < 0 || s >= n {
					t.Fatal("sample index out of range")
				}
			}
		}
		if len(seen) != n {
			t.Fatalf("clusters cover %d of %d", len(seen), n)
		}

		var truth float64
		for _, v := range times {
			truth += v
		}
		est := plan.Estimate(func(i int) float64 { return times[i] })
		if truth > 0 {
			// Allow 3x the bound: a fuzz case is a single draw at 95%
			// confidence, and tiny n makes the CLT approximation loose.
			if rel := math.Abs(est-truth) / truth; rel > 3*plan.Epsilon {
				t.Fatalf("error %v far exceeds bound %v (n=%d)", rel, plan.Epsilon, n)
			}
		}
	})
}

// FuzzSampleParallel feeds randomized profiles through the parallel
// clustering path and demands the plan be identical to the serial one —
// the worker pool must never change any output bit.
func FuzzSampleParallel(f *testing.F) {
	f.Add(uint64(1), 500, 3, 4)
	f.Add(uint64(7), 50, 1, 2)
	f.Add(uint64(42), 2000, 5, 13)
	f.Fuzz(func(t *testing.T, seed uint64, n, kinds, workers int) {
		if n <= 0 || n > 5000 || kinds <= 0 || kinds > 16 || workers < 2 || workers > 64 {
			t.Skip()
		}
		r := rng.New(seed)
		names := make([]string, n)
		times := make([]float64, n)
		letters := "abcdefghijklmnop"
		for i := range names {
			k := r.Intn(kinds)
			names[i] = letters[k : k+1]
			times[i] = float64(1+k) * 10 * math.Exp(0.1*r.NormFloat64())
		}

		serial, err := Sample(names, times, Options{Seed: seed, Parallelism: 1})
		if err != nil {
			t.Fatalf("valid profile rejected: %v", err)
		}
		par, err := Sample(names, times, Options{Seed: seed, Parallelism: workers})
		if err != nil {
			t.Fatalf("parallel path rejected what serial accepted: %v", err)
		}
		if !reflect.DeepEqual(serial, par) {
			t.Fatalf("plan differs between 1 and %d workers (n=%d kinds=%d)", workers, n, kinds)
		}
	})
}
