package stemroot_test

import (
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"testing"

	"stemroot"
	"stemroot/internal/servetrace"
	"stemroot/internal/trace"
)

// benchTrace lazily materializes one serving-trace CSV shared by the
// streaming benchmarks (writing it is not part of the measured work).
var benchTrace struct {
	once sync.Once
	path string
	size int64
	rows int
	err  error
}

func servingCSV(b *testing.B) (string, int64, int) {
	benchTrace.once.Do(func() {
		const rows = 2_000_000
		dir, err := os.MkdirTemp("", "stemroot-bench")
		if err != nil {
			benchTrace.err = err
			return
		}
		path := filepath.Join(dir, "serving.csv")
		f, err := os.Create(path)
		if err != nil {
			benchTrace.err = err
			return
		}
		s := servetrace.New(servetrace.Config{Seed: 1, Invocations: rows})
		if err := s.WriteCSV(f); err != nil {
			f.Close()
			benchTrace.err = err
			return
		}
		if err := f.Close(); err != nil {
			benchTrace.err = err
			return
		}
		st, err := os.Stat(path)
		if err != nil {
			benchTrace.err = err
			return
		}
		benchTrace.path, benchTrace.size, benchTrace.rows = path, st.Size(), rows
	})
	if benchTrace.err != nil {
		b.Fatal(benchTrace.err)
	}
	return benchTrace.path, benchTrace.size, benchTrace.rows
}

// BenchmarkStreamIngest compares the planning paths end to end on the same
// on-disk serving trace: onepass is the StreamPlanner fed by the zero-alloc
// byte decoder (one scan, no per-row garbage), twopass is the existing
// SampleStream over the encoding/csv scanner (two scans). bytes/s measures
// CSV throughput; the ISSUE gate requires onepass ≥ 2× twopass.
func BenchmarkStreamIngest(b *testing.B) {
	path, size, rows := servingCSV(b)

	b.Run("onepass", func(b *testing.B) {
		b.SetBytes(size)
		for i := 0; i < b.N; i++ {
			sp, err := stemroot.NewStreamPlanner(stemroot.Options{}, stemroot.StreamOptions{})
			if err != nil {
				b.Fatal(err)
			}
			n := 0
			if err := (trace.FastCSVScanner{Path: path}).ScanBytes(func(name []byte, t float64) bool {
				sp.AddBytes(name, t)
				n++
				return true
			}); err != nil {
				b.Fatal(err)
			}
			if n != rows {
				b.Fatalf("scanned %d rows", n)
			}
			plan, err := sp.Plan()
			if err != nil {
				b.Fatal(err)
			}
			if len(plan.Clusters) == 0 {
				b.Fatal("empty plan")
			}
		}
	})

	b.Run("twopass", func(b *testing.B) {
		b.SetBytes(size)
		for i := 0; i < b.N; i++ {
			plan, err := stemroot.SampleStream(trace.CSVScanner{Path: path},
				stemroot.Options{}, stemroot.StreamOptions{})
			if err != nil {
				b.Fatal(err)
			}
			if len(plan.Clusters) == 0 {
				b.Fatal("empty plan")
			}
		}
	})
}

// BenchmarkIncrementalPlan measures one amortized re-derivation of the
// plan from warm reservoirs — the cost a serving deployment pays per
// re-plan (not per invocation).
func BenchmarkIncrementalPlan(b *testing.B) {
	path, _, _ := servingCSV(b)
	sp, err := stemroot.NewStreamPlanner(stemroot.Options{}, stemroot.StreamOptions{})
	if err != nil {
		b.Fatal(err)
	}
	if err := (trace.FastCSVScanner{Path: path}).ScanBytes(func(name []byte, t float64) bool {
		sp.AddBytes(name, t)
		return true
	}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sp.Plan(); err != nil {
			b.Fatal(err)
		}
	}
}

// TestStreamIngestAllocFree pins the steady-state ingest loop at zero
// allocations per invocation: decode + planner Add over rows already in
// memory must not touch the heap.
func TestStreamIngestAllocFree(t *testing.T) {
	sp, err := stemroot.NewStreamPlanner(stemroot.Options{}, stemroot.StreamOptions{ReservoirCap: 512})
	if err != nil {
		t.Fatal(err)
	}
	rowA := []byte("17,attn_decode_l0,12.375\n")
	rowB := []byte("18,mlp_decode_l1,9.5\n")
	// Warm up: intern the names and fill the reservoirs.
	for i := 0; i < 2000; i++ {
		for _, row := range [][]byte{rowA, rowB} {
			name, v, err := trace.ParseProfileRecord(row)
			if err != nil {
				t.Fatal(err)
			}
			sp.AddBytes(name, v)
		}
	}
	allocs := testing.AllocsPerRun(10000, func() {
		name, v, err := trace.ParseProfileRecord(rowA)
		if err != nil {
			t.Fatal(err)
		}
		sp.AddBytes(name, v)
	})
	if allocs != 0 {
		t.Fatalf("steady-state ingest allocates %v per invocation, want 0", allocs)
	}
}

// TestStreamBoundedMemory proves the O(#kernels × ReservoirCap) bound: the
// live heap attributable to a planner that ingested a 10⁷-invocation
// serving trace must be within 2× of a 10⁵-invocation one (same kernel
// set, same reservoir cap), plus 1 MiB of GC noise slack.
func TestStreamBoundedMemory(t *testing.T) {
	if testing.Short() {
		t.Skip("10⁷-invocation ingest")
	}
	if raceEnabled {
		t.Skip("race runtime distorts heap accounting")
	}
	live := func(n int) float64 {
		runtime.GC()
		var before runtime.MemStats
		runtime.ReadMemStats(&before)

		sp, err := stemroot.NewStreamPlanner(stemroot.Options{},
			stemroot.StreamOptions{ReservoirCap: 1024})
		if err != nil {
			t.Fatal(err)
		}
		s := servetrace.New(servetrace.Config{Seed: 5, Invocations: n})
		if err := s.ScanBytes(func(name []byte, v float64) bool {
			sp.AddBytes(name, v)
			return true
		}); err != nil {
			t.Fatal(err)
		}
		if _, err := sp.Plan(); err != nil {
			t.Fatal(err)
		}

		runtime.GC()
		var after runtime.MemStats
		runtime.ReadMemStats(&after)
		runtime.KeepAlive(sp)
		d := float64(after.HeapAlloc) - float64(before.HeapAlloc)
		if d < 0 {
			d = 0
		}
		return d
	}

	small := live(100_000)
	big := live(10_000_000)
	if big > 2*small+float64(1<<20) {
		t.Fatalf("10⁷-invocation live heap %.2f MiB exceeds 2x the 10⁵ one (%.2f MiB)",
			big/(1<<20), small/(1<<20))
	}
	t.Logf("live heap: 10⁵ invocations %.2f MiB, 10⁷ invocations %.2f MiB", small/(1<<20), big/(1<<20))
}
