package stemroot

import (
	"stemroot/internal/core"
)

// Scanner streams (kernel name, execution time µs) pairs in invocation
// order; Scan must reproduce the identical sequence on each call. It lets
// SampleStream plan over profiles too large to hold in memory (the paper's
// large-scale traces reach tens of millions of invocations).
type Scanner interface {
	Scan(yield func(name string, timeUS float64) bool) error
}

// StreamOptions tunes SampleStream's memory/accuracy tradeoff.
type StreamOptions struct {
	// ReservoirCap bounds the per-kernel time sample used for clustering;
	// 0 means 8192. Peak memory is O(kernel names x ReservoirCap),
	// independent of trace length.
	ReservoirCap int
}

// SampleStream is Sample for out-of-core profiles: two sequential passes
// over the scanner build the same kind of plan Sample produces, with
// bounded memory. Cluster statistics are exact (streamed); the clustering
// itself runs on per-kernel uniform reservoirs.
func SampleStream(src Scanner, opts Options, sopts StreamOptions) (*Plan, error) {
	cp, err := core.BuildPlanStream(scannerAdapter{src}, opts.params(),
		core.StreamOptions{ReservoirCap: sopts.ReservoirCap})
	if err != nil {
		return nil, err
	}
	p := opts.params()
	plan := &Plan{
		PredictedError: cp.PredictedError,
		Epsilon:        p.Epsilon,
		Confidence:     p.Confidence,
	}
	for i := range cp.Clusters {
		c := &cp.Clusters[i]
		plan.Clusters = append(plan.Clusters, Cluster{
			Kernel: c.Name,
			// Members are not materialized in streaming mode; the weight
			// carries the population.
			Samples: c.Samples,
			Weight:  c.Weight,
			Mean:    c.Stats.Mean,
			StdDev:  c.Stats.StdDev,
		})
	}
	return plan, nil
}

// scannerAdapter bridges the public Scanner to the internal interface.
type scannerAdapter struct{ s Scanner }

func (a scannerAdapter) Scan(yield func(string, float64) bool) error {
	return a.s.Scan(yield)
}
