package stemroot

import (
	"stemroot/internal/core"
)

// Scanner streams (kernel name, execution time µs) pairs in invocation
// order; Scan must reproduce the identical sequence on each call. It lets
// SampleStream plan over profiles too large to hold in memory (the paper's
// large-scale traces reach tens of millions of invocations).
type Scanner interface {
	Scan(yield func(name string, timeUS float64) bool) error
}

// StreamOptions tunes the memory/accuracy tradeoff of SampleStream and
// StreamPlanner.
type StreamOptions struct {
	// ReservoirCap bounds the per-kernel time sample used for clustering;
	// 0 means 8192. Peak memory has two bounded terms — O(#names ×
	// ReservoirCap) for the clustering reservoirs plus O(#clusters ×
	// maxSampleSize) for the candidate sample pools — both independent of
	// trace length.
	ReservoirCap int

	// ReplanEvery is StreamPlanner's amortization factor: a cached plan is
	// re-derived once the invocation count grows by this multiple since
	// the last re-plan (0 means 2, the doubling schedule). SampleStream
	// ignores it.
	ReplanEvery float64

	// DriftTol re-plans early when any kernel's exact running mean moves
	// by more than this fraction since the last re-plan (0 means 0.25;
	// negative disables the drift trigger). SampleStream ignores it.
	DriftTol float64
}

func (o StreamOptions) core() core.StreamOptions {
	return core.StreamOptions{
		ReservoirCap: o.ReservoirCap,
		ReplanEvery:  o.ReplanEvery,
		DriftTol:     o.DriftTol,
	}
}

// SampleStream is Sample for out-of-core profiles: two sequential passes
// over the scanner build the same kind of plan Sample produces, with
// bounded memory. Cluster statistics are exact (streamed); the clustering
// itself runs on per-kernel uniform reservoirs.
func SampleStream(src Scanner, opts Options, sopts StreamOptions) (*Plan, error) {
	cp, err := core.BuildPlanStream(scannerAdapter{src}, opts.params(), sopts.core())
	if err != nil {
		return nil, err
	}
	return convertStreamPlan(cp, opts.params()), nil
}

// convertStreamPlan maps an internal streaming plan (no materialized
// members) to the public shape.
func convertStreamPlan(cp *core.Plan, p core.Params) *Plan {
	plan := &Plan{
		PredictedError: cp.PredictedError,
		Epsilon:        p.Epsilon,
		Confidence:     p.Confidence,
	}
	for i := range cp.Clusters {
		c := &cp.Clusters[i]
		plan.Clusters = append(plan.Clusters, Cluster{
			Kernel: c.Name,
			// Members are not materialized in streaming mode; the weight
			// carries the population.
			Samples: c.Samples,
			Weight:  c.Weight,
			Mean:    c.Stats.Mean,
			StdDev:  c.Stats.StdDev,
		})
	}
	return plan
}

// StreamPlanner maintains a sampling plan over a live profile stream in a
// single pass and bounded memory — the service-mode counterpart of
// SampleStream. Feed invocations with Add (or AddBytes on the zero-alloc
// hot path), then read rolling results with Snapshot or CurrentPlan; plans
// are re-derived on an amortized schedule (see StreamOptions), so per-
// invocation cost stays O(1). A StreamPlanner must be confined to one
// goroutine.
type StreamPlanner struct {
	ip *core.IncrementalPlanner
	p  core.Params
}

// NewStreamPlanner validates the options and returns an empty planner.
func NewStreamPlanner(opts Options, sopts StreamOptions) (*StreamPlanner, error) {
	p := opts.params()
	ip, err := core.NewIncrementalPlanner(p, sopts.core())
	if err != nil {
		return nil, err
	}
	return &StreamPlanner{ip: ip, p: p}, nil
}

// Add ingests one invocation.
func (sp *StreamPlanner) Add(name string, timeUS float64) { sp.ip.Add(name, timeUS) }

// AddBytes ingests one invocation with a []byte kernel name, allocating
// only the first time a name is seen (interned in a byte-keyed symbol
// table) — the steady state is allocation-free.
func (sp *StreamPlanner) AddBytes(name []byte, timeUS float64) { sp.ip.AddBytes(name, timeUS) }

// Count returns the number of invocations ingested.
func (sp *StreamPlanner) Count() int { return sp.ip.Count() }

// Kernels returns the number of distinct kernel names seen.
func (sp *StreamPlanner) Kernels() int { return sp.ip.Names() }

// TotalTime returns the exact (compensated) sum of ingested times in µs.
func (sp *StreamPlanner) TotalTime() float64 { return sp.ip.TotalTime() }

// Replans returns how many times the plan has been re-derived.
func (sp *StreamPlanner) Replans() int { return sp.ip.Replans() }

// CurrentPlan returns the plan for everything ingested so far, re-deriving
// it only when the amortized schedule says the cached one is stale.
// Cluster sample indices are invocation positions in the stream (0-based).
func (sp *StreamPlanner) CurrentPlan() (*Plan, error) {
	cp, err := sp.ip.CurrentPlan()
	if err != nil {
		return nil, err
	}
	return convertStreamPlan(cp, sp.p), nil
}

// Plan forces a fresh re-derivation regardless of the schedule. The result
// is deterministic in (stream, seed): forcing extra re-plans never changes
// the final plan.
func (sp *StreamPlanner) Plan() (*Plan, error) {
	cp, err := sp.ip.Plan()
	if err != nil {
		return nil, err
	}
	return convertStreamPlan(cp, sp.p), nil
}

// Snapshot is a rolling summary of the stream and its current plan.
type Snapshot struct {
	// Invocations and Kernels describe the stream so far.
	Invocations int
	Kernels     int
	// TotalTimeUS is the exact profiled total; ExtrapolatedUS is the
	// plan's estimate of it from the drawn samples alone — their relative
	// gap is a live accuracy signal.
	TotalTimeUS    float64
	ExtrapolatedUS float64
	// Clusters, TotalSamples, DistinctTimeUS and PredictedError summarize
	// the current plan.
	Clusters       int
	TotalSamples   int
	DistinctTimeUS float64
	PredictedError float64
	// Replans counts plan re-derivations since the start of the stream.
	Replans int
}

// Snapshot returns the rolling summary, re-deriving the plan only if the
// amortized schedule requires it.
func (sp *StreamPlanner) Snapshot() (Snapshot, error) {
	cp, err := sp.ip.CurrentPlan()
	if err != nil {
		return Snapshot{}, err
	}
	samples := 0
	for i := range cp.Clusters {
		samples += cp.Clusters[i].SampleSize
	}
	// The plan's estimate extrapolates the total at plan time; scale it
	// forward to the current invocation count so the snapshot gap tracks
	// both sampling error and post-plan drift.
	extrap := sp.ip.LastEstimate()
	if at := sp.ip.PlanAt(); at > 0 {
		extrap *= float64(sp.ip.Count()) / float64(at)
	}
	return Snapshot{
		Invocations:    sp.ip.Count(),
		Kernels:        sp.ip.Names(),
		TotalTimeUS:    sp.ip.TotalTime(),
		ExtrapolatedUS: extrap,
		Clusters:       len(cp.Clusters),
		TotalSamples:   samples,
		DistinctTimeUS: sp.ip.LastSampledTime(),
		PredictedError: cp.PredictedError,
		Replans:        sp.ip.Replans(),
	}, nil
}

// scannerAdapter bridges the public Scanner to the internal interface.
type scannerAdapter struct{ s Scanner }

func (a scannerAdapter) Scan(yield func(string, float64) bool) error {
	return a.s.Scan(yield)
}
