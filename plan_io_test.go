package stemroot

import (
	"bytes"
	"strings"
	"testing"
)

func TestPlanJSONRoundTrip(t *testing.T) {
	names, times := syntheticProfile(6000, 5)
	plan, err := Sample(names, times, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := plan.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadPlanJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Clusters) != len(plan.Clusters) {
		t.Fatalf("cluster count: %d vs %d", len(got.Clusters), len(plan.Clusters))
	}
	if got.Epsilon != plan.Epsilon || got.PredictedError != plan.PredictedError {
		t.Fatal("metadata lost")
	}
	// The estimator must behave identically on the round-tripped plan.
	timeOf := func(i int) float64 { return times[i] }
	if got.Estimate(timeOf) != plan.Estimate(timeOf) {
		t.Fatal("estimates diverge after round trip")
	}
}

func TestReadPlanJSONErrors(t *testing.T) {
	if _, err := ReadPlanJSON(strings.NewReader("{broken")); err == nil {
		t.Fatal("expected decode error")
	}
	if _, err := ReadPlanJSON(strings.NewReader(`{"version": 99}`)); err == nil {
		t.Fatal("expected version error")
	}
	if _, err := ReadPlanJSON(strings.NewReader(
		`{"version":1,"clusters":[{"kernel":"k","weight":-1}]}`)); err == nil {
		t.Fatal("expected weight validation error")
	}
}

func TestSmallSampleTOption(t *testing.T) {
	names, times := syntheticProfile(6000, 6)
	z, err := Sample(names, times, Options{})
	if err != nil {
		t.Fatal(err)
	}
	tt, err := Sample(names, times, Options{SmallSampleT: true})
	if err != nil {
		t.Fatal(err)
	}
	if tt.TotalSamples() < z.TotalSamples() {
		t.Fatalf("t-corrected plan smaller: %d vs %d", tt.TotalSamples(), z.TotalSamples())
	}
}
