//go:build !race

package stemroot_test

const raceEnabled = false
